// Networked pipeline sweep: the RESP server (src/net) vs the RemoteStore
// baseline, over pipeline depth P in {1, 4, 16, 64}.
//
// Both sides run the same closed loop: 2 client threads, each keeping P
// commands (50:50 GET/SET, uniform keys) in flight on its own connection.
// The faster_server side goes over loopback TCP through the RESP parser
// and the per-turn ExecuteBatch coalescer; the remote_baseline side goes
// over the socketpair text protocol to the single-threaded baseline. The
// interesting comparisons (summarize_bench.py prints both):
//
//   * depth speedup — P>=16 vs P=1 on the server: amortizing the network
//     hop AND filling the store's batch pipeline (Sec. 7.2.4's -P sweep);
//   * server vs baseline at equal P — the concurrent, batch-executing
//     server against the paper's Redis stand-in.
//
// Counters: P (pipeline depth) and Mops; sidecars via $FASTER_BENCH_JSON_DIR.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "baselines/remote_store.h"
#include "common.h"
#include "net/resp.h"
#include "net/server.h"
#include "net/socket.h"

namespace faster {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kConnections = 2;

uint64_t NetKeys() { return BenchKeys(uint64_t{1} << 17); }

/// Closed loop over loopback TCP: write P RESP commands, frame P replies.
uint64_t DriveServerConnection(uint16_t port, uint32_t pipeline,
                               uint64_t keys, uint32_t seed,
                               double seconds) {
  net::UniqueFd fd = net::ConnectTcp("127.0.0.1", port);
  if (!fd) return 0;
  net::SetNoDelay(fd.get());
  std::mt19937_64 rng{seed};
  std::uniform_int_distribution<uint64_t> key_dist{0, keys - 1};
  std::string req, rbuf;
  char tmp[1 << 16];
  uint64_t done = 0;
  auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    req.clear();
    for (uint32_t i = 0; i < pipeline; ++i) {
      char line[64];
      uint64_t key = key_dist(rng);
      int n = (i & 1) == 0
                  ? std::snprintf(line, sizeof(line), "GET %llu\r\n",
                                  static_cast<unsigned long long>(key))
                  : std::snprintf(line, sizeof(line), "SET %llu %llu\r\n",
                                  static_cast<unsigned long long>(key),
                                  static_cast<unsigned long long>(key));
      req.append(line, static_cast<size_t>(n));
    }
    if (!net::WriteAllFd(fd.get(), req.data(), req.size())) break;
    uint32_t seen = 0;
    size_t pos = 0;
    while (seen < pipeline) {
      ssize_t got = net::ReadSomeFd(fd.get(), tmp, sizeof(tmp));
      if (got <= 0) return done;
      rbuf.append(tmp, static_cast<size_t>(got));
      for (;;) {
        size_t next = net::SkipReply(rbuf, pos, nullptr);
        if (next == std::string::npos) break;
        pos = next;
        if (++seen == pipeline) break;
      }
    }
    rbuf.erase(0, pos);
    done += pipeline;
  }
  return done;
}

void BM_FasterServer(benchmark::State& state) {
  uint32_t pipeline = static_cast<uint32_t>(state.range(0));
  uint64_t keys = NetKeys();
  for (auto _ : state) {
    net::ServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.threads = 2;
    opts.table_size = keys;
    net::FasterServer server{opts};
    if (!server.ok()) {
      state.SkipWithError(server.error().c_str());
      break;
    }
    double seconds = BenchSeconds();
    std::vector<std::thread> clients;
    std::vector<uint64_t> counts(kConnections, 0);
    auto t0 = Clock::now();
    for (uint32_t c = 0; c < kConnections; ++c) {
      clients.emplace_back([&, c] {
        counts[c] = DriveServerConnection(server.port(), pipeline, keys,
                                          0xc0ffee + c, seconds);
      });
    }
    for (auto& t : clients) t.join();
    double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    state.SetItemsProcessed(static_cast<int64_t>(total));
    state.counters["Mops"] = benchmark::Counter(
        static_cast<double>(total) / elapsed / 1e6,
        benchmark::Counter::kAvgThreads);
    state.counters["total_ops"] =
        benchmark::Counter(static_cast<double>(total),
                           benchmark::Counter::kAvgThreads);
    state.counters["P"] = static_cast<double>(pipeline);
  }
}

void BM_RemoteBaseline(benchmark::State& state) {
  uint32_t pipeline = static_cast<uint32_t>(state.range(0));
  uint64_t keys = NetKeys();
  for (auto _ : state) {
    RemoteStore store;
    double seconds = BenchSeconds();
    std::vector<std::thread> clients;
    std::vector<uint64_t> counts(kConnections, 0);
    auto t0 = Clock::now();
    for (uint32_t c = 0; c < kConnections; ++c) {
      auto client = store.Connect();
      clients.emplace_back([&, c, client = std::move(client)] {
        std::mt19937_64 rng{0xc0ffee + c};
        std::uniform_int_distribution<uint64_t> key_dist{0, keys - 1};
        std::vector<RemoteStore::Client::Op> ops(pipeline);
        auto deadline =
            Clock::now() + std::chrono::duration<double>(seconds);
        while (Clock::now() < deadline) {
          for (uint32_t i = 0; i < pipeline; ++i) {
            uint64_t key = key_dist(rng);
            ops[i].is_set = (i & 1) != 0;
            ops[i].key = key;
            ops[i].value = key;
          }
          if (client->ExecuteBatch(&ops) != Status::kOk) break;
          counts[c] += pipeline;
        }
      });
    }
    for (auto& t : clients) t.join();
    double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    state.SetItemsProcessed(static_cast<int64_t>(total));
    state.counters["Mops"] = benchmark::Counter(
        static_cast<double>(total) / elapsed / 1e6,
        benchmark::Counter::kAvgThreads);
    state.counters["total_ops"] =
        benchmark::Counter(static_cast<double>(total),
                           benchmark::Counter::kAvgThreads);
    state.counters["P"] = static_cast<double>(pipeline);
  }
}

void RegisterAll() {
  for (int64_t p : {1, 4, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("net_pipeline/faster_server/P:" + std::to_string(p)).c_str(),
        BM_FasterServer)
        ->Args({p})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("net_pipeline/remote_baseline/P:" + std::to_string(p)).c_str(),
        BM_RemoteBaseline)
        ->Args({p})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
