// I/O-path sidecar: the thread-pool completion hop vs. the
// completion-polling queue pairs (DESIGN.md §13), as a Fig. 10-style
// memory-budget sweep. At small budgets a 50:50 zipf workload turns into
// a pending-read storm, so the per-I/O overhead of the completion path —
// submit handoff, worker wakeup, cross-thread completion queue vs.
// poll-on-caller — dominates throughput. Case names:
//
//   io_path/pool/budgetMB:N      IoThreadPool (2 workers), the old path
//   io_path/polling/budgetMB:N   IoQueuePair submit/poll, no I/O threads
//   io_path_file/{pool,polling,uring}/budgetMB:N
//                                same comparison on a FileDevice, with
//                                the io_uring backend when the kernel
//                                supports it (uring_active counter says
//                                whether it actually engaged)
//
// tools/summarize_bench.py pairs pool vs. the other modes per budget and
// prints the speedup lines recorded in EXPERIMENTS.md.

#include <filesystem>

#include "common.h"
#include "device/file_device.h"

namespace faster {
namespace bench {
namespace {

using Funcs = BlobStoreFunctions<100>;

uint64_t DatasetKeys() { return BenchKeys() / 2; }

/// FasterStoreHolder hardcodes a thread-pool MemoryDevice; the point here
/// is the device, so this holder takes one by reference instead.
struct ModalStoreHolder {
  ModalStoreHolder(const FasterKv<Funcs>::Config& cfg, IDevice* device)
      : store(std::make_unique<FasterKv<Funcs>>(cfg, device)) {}

  void Load(uint64_t n) {
    store->StartSession();
    for (uint64_t k = 0; k < n; ++k) {
      store->Upsert(k, MakeValue<Funcs::Value>(k));
    }
    store->StopSession();
  }

  std::unique_ptr<FasterKv<Funcs>> store;
};

void RunCase(benchmark::State& state, IDevice* device, uint64_t keys,
             uint64_t budget_mb) {
  auto spec = WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kZipfian, keys);
  auto cfg = FasterConfig<Funcs>(keys, budget_mb << 20, 0.9);
  cfg.table_size = std::max<uint64_t>(keys / 8, 1024);
  ModalStoreHolder holder{cfg, device};
  holder.Load(keys);
  FasterAdapter<Funcs> adapter{*holder.store};
  Report(state, RunWorkload(adapter, spec, 2, BenchSeconds()));
}

void BM_MemoryIoPath(benchmark::State& state) {
  uint64_t keys = DatasetKeys();
  uint64_t budget_mb = static_cast<uint64_t>(state.range(0));
  bool polling = state.range(1) != 0;
  for (auto _ : state) {
    // Polling runs zero I/O threads: every flush write and cold read
    // executes inside a worker's own CompletePending poll.
    MemoryDevice device = polling
                              ? MemoryDevice{0, 0, IoPathMode::kPolling}
                              : MemoryDevice{2, 0, IoPathMode::kThreadPool};
    RunCase(state, &device, keys, budget_mb);
  }
}

void BM_FileIoPath(benchmark::State& state) {
  // File-backed runs are slower per op; shrink the dataset so load +
  // measure still fits a sidecar-friendly window.
  uint64_t keys = DatasetKeys() / 4;
  uint64_t budget_mb = static_cast<uint64_t>(state.range(0));
  auto mode = static_cast<IoPathMode>(state.range(1));
  std::string path = "/tmp/faster_bench_io_path.log";
  for (auto _ : state) {
    std::filesystem::remove(path);
    {
      FileDevice device{path, 2, mode};
      RunCase(state, &device, keys, budget_mb);
      // kUring silently falls back to kPolling on old kernels; record
      // which backend actually ran so the sidecar is honest.
      state.counters["uring_active"] = benchmark::Counter(
          device.mode() == IoPathMode::kUring ? 1.0 : 0.0);
    }
    std::filesystem::remove(path);
  }
}

void RegisterAll() {
  for (int64_t budget : {8, 16, 32, 64}) {
    for (int polling = 0; polling < 2; ++polling) {
      benchmark::RegisterBenchmark(
          (std::string("io_path/") + (polling != 0 ? "polling" : "pool") +
           "/budgetMB:" + std::to_string(budget))
              .c_str(),
          BM_MemoryIoPath)
          ->Args({budget, polling})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  struct FileMode {
    const char* name;
    IoPathMode mode;
  };
  for (FileMode fm : {FileMode{"pool", IoPathMode::kThreadPool},
                      FileMode{"polling", IoPathMode::kPolling},
                      FileMode{"uring", IoPathMode::kUring}}) {
    benchmark::RegisterBenchmark(
        (std::string("io_path_file/") + fm.name + "/budgetMB:16").c_str(),
        BM_FileIoPath)
        ->Args({16, static_cast<int64_t>(fm.mode)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
