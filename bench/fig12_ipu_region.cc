// Reproduces Fig. 12 (a, b): effect of the in-place-update (IPU) region
// size on a 100% RMW workload.
//   (a) throughput and log growth rate vs. IPU region factor, uniform and
//       Zipf — more IPU region means more in-place updates: higher
//       throughput, slower log growth; Zipf reaches peak throughput at
//       much smaller IPU factors (hot keys concentrate in the mutable
//       region — the log's shaping effect).
//   (b) percentage of RMWs deferred in the fuzzy region vs. IPU factor —
//       small everywhere, rising only when most of memory is mutable.
//
// The IPU Region Factor is the fraction of the *dataset* that fits in the
// mutable region; with the log buffer sized to the dataset it equals the
// mutable fraction of the buffer.

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_IpuRegion(benchmark::State& state) {
  double factor = static_cast<double>(state.range(0)) / 100.0;
  Distribution dist =
      state.range(1) == 0 ? Distribution::kUniform : Distribution::kZipfian;
  uint64_t keys = BenchKeys();
  auto spec = WorkloadSpec::Ycsb(0.0, 1.0, dist, keys);
  for (auto _ : state) {
    // Buffer sized to the dataset: mutable_fraction == IPU region factor.
    uint64_t dataset_bytes =
        keys * FasterKv<CountStoreFunctions>::RecordT::size();
    auto cfg = FasterConfig<CountStoreFunctions>(
        keys, dataset_bytes + (8ull << 20), factor);
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    Address tail_before = holder.store->hlog().tail_address();
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, BenchMaxThreads(), BenchSeconds());
    Report(state, r);
    Address tail_after = holder.store->hlog().tail_address();
    double log_mb = static_cast<double>(tail_after - tail_before) / (1 << 20);
    state.counters["log_growth_MBps"] = benchmark::Counter(log_mb / r.seconds);
    auto stats = holder.store->GetStats();
    double fuzzy_pct =
        stats.rmws > 0 ? 100.0 * static_cast<double>(stats.fuzzy_rmws) /
                             static_cast<double>(stats.rmws)
                       : 0.0;
    state.counters["fuzzy_pct"] = benchmark::Counter(fuzzy_pct);
  }
}

void RegisterAll() {
  for (int d = 0; d < 2; ++d) {
    for (int64_t pct : {10, 20, 30, 40, 50, 60, 70, 80, 90, 95}) {
      std::string name = std::string("fig12/FASTER/") +
                         (d == 0 ? "uniform" : "zipf") +
                         "/ipu_factor:" + std::to_string(pct);
      benchmark::RegisterBenchmark(name.c_str(), BM_IpuRegion)
          ->Args({pct, d})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
