// Reproduces the Sec. 7.2.4 comparison to Redis: a single-threaded,
// pipeline-accessed cache (our RemoteStore stand-in) vs. single-threaded
// embedded FASTER, on pure SET and pure GET streams over a 1 M key space.
//
// The paper sweeps redis-benchmark's pipeline depth (-P 1..200) with 10
// client connections and finds ~1.1 M sets/s and ~1.4 M gets/s at best —
// far below single-threaded FASTER. Expected shape here: RemoteStore
// throughput rises with pipeline depth and saturates well below the
// embedded FASTER numbers.

#include <thread>

#include "baselines/remote_store.h"
#include "common.h"

namespace faster {
namespace bench {
namespace {

constexpr uint64_t kKeySpace = 1 << 20;

void BM_RemoteStore(benchmark::State& state) {
  bool is_set = state.range(0) == 1;
  uint32_t pipeline = static_cast<uint32_t>(state.range(1));
  constexpr uint32_t kClients = 4;  // paper: 10 client connections
  for (auto _ : state) {
    RemoteStore store;
    {
      // Preload the key space (redis-benchmark measures over an existing
      // dataset); gets then exercise the value path, not just misses.
      auto loader = store.Connect();
      std::vector<RemoteStore::Client::Op> batch;
      for (uint64_t k = 0; k < kKeySpace; ++k) {
        batch.push_back({true, k, k, 0, false});
        if (batch.size() == 512) {
          loader->ExecuteBatch(&batch);
          batch.clear();
        }
      }
      if (!batch.empty()) loader->ExecuteBatch(&batch);
    }
    std::atomic<uint64_t> total_ops{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (uint32_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto client = store.Connect();
        std::mt19937_64 rng(c + 1);
        std::vector<RemoteStore::Client::Op> batch(pipeline);
        uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (auto& op : batch) {
            op.is_set = is_set;
            op.key = rng() % kKeySpace;
            op.value = ops;
          }
          if (client->ExecuteBatch(&batch) != Status::kOk) break;
          ops += batch.size();
        }
        total_ops.fetch_add(ops);
      });
    }
    double secs = BenchSeconds();
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    stop.store(true);
    for (auto& t : clients) t.join();
    double mops = static_cast<double>(total_ops.load()) / secs / 1e6;
    state.counters["Mops"] = benchmark::Counter(mops);
    state.SetItemsProcessed(static_cast<int64_t>(total_ops.load()));
  }
}

void BM_FasterSingleThread(benchmark::State& state) {
  bool is_set = state.range(0) == 1;
  for (auto _ : state) {
    FasterStoreHolder<CountStoreFunctions> holder{
        FasterConfig<CountStoreFunctions>(kKeySpace, kKeySpace * 64)};
    holder.Load(kKeySpace);
    auto spec = is_set
                    ? WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kUniform,
                                         kKeySpace)
                    : WorkloadSpec::Ycsb(1.0, 0.0, Distribution::kUniform,
                                         kKeySpace);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    Report(state, RunWorkload(adapter, spec, 1, BenchSeconds()));
  }
}

void RegisterAll() {
  for (int set = 0; set < 2; ++set) {
    const char* op = set == 1 ? "set" : "get";
    for (int64_t p : {1, 10, 50, 200}) {
      std::string name = std::string("redis/RemoteStore/") + op +
                         "/pipeline:" + std::to_string(p);
      benchmark::RegisterBenchmark(name.c_str(), BM_RemoteStore)
          ->Args({set, p})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("redis/FASTER-1thread/") + op).c_str(),
        BM_FasterSingleThread)
        ->Args({set})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
