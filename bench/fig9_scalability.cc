// Reproduces Fig. 9 (a, b): throughput scalability with increasing thread
// count, Zipf distribution.
//   (a) 100% RMW, 8-byte payloads  — FASTER scales; the locking hash map
//       contends on hot keys; the range index scales but at much lower
//       absolute throughput; the LSM is far below all of them.
//   (b) 0:100 blind upserts, 100-byte payloads.
//
// Note (DESIGN.md §2): this container has one hardware core, so added
// threads time-slice; the curves show each system's *contention* behaviour
// (flat for latch-free FASTER, degrading for lock-based designs under
// skew) rather than parallel speedup.

#include "common.h"

namespace faster {
namespace bench {
namespace {

using Blob100Funcs = BlobStoreFunctions<100>;

template <class F>
void BM_Faster(benchmark::State& state) {
  uint64_t keys = BenchKeys() / (sizeof(typename F::Value) > 8 ? 4 : 1);
  auto spec = state.range(1) == 0
                  ? WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FasterStoreHolder<F> holder{
        FasterConfig<F>(keys, keys * (sizeof(typename F::Value) + 32))};
    holder.Load(keys);
    FasterAdapter<F> adapter{*holder.store};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

template <class V>
void BM_ShardMap(benchmark::State& state) {
  uint64_t keys = BenchKeys() / (sizeof(V) > 8 ? 4 : 1);
  auto spec = state.range(1) == 0
                  ? WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    ShardHashMap<uint64_t, V> map{keys};
    for (uint64_t k = 0; k < keys; ++k) map.Put(k, MakeValue<V>(k));
    ShardMapAdapter<V> adapter{map};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

template <class V>
void BM_Ordered(benchmark::State& state) {
  uint64_t keys = BenchKeys() / (sizeof(V) > 8 ? 8 : 2);
  auto spec = state.range(1) == 0
                  ? WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    OrderedStore<uint64_t, V> store;
    for (uint64_t k = 0; k < keys; ++k) store.Put(k, MakeValue<V>(k));
    OrderedAdapter<V> adapter{store};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

void BM_Lsm(benchmark::State& state) {
  bool rmw = state.range(1) == 0;
  uint32_t value_size = rmw ? 8 : 100;
  uint64_t keys = BenchKeys() / 8;
  auto spec = rmw ? WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    minilsm::LsmConfig cfg;
    cfg.dir = "/tmp/faster_bench_lsm_fig9";
    std::filesystem::remove_all(cfg.dir);
    cfg.value_size = value_size;
    cfg.memtable_bytes = 16ull << 20;
    minilsm::MiniLsm db{cfg};
    std::vector<uint8_t> v(value_size, 0);
    for (uint64_t k = 0; k < keys; ++k) db.Put(k, v.data());
    LsmAdapter adapter{db, value_size};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
    std::filesystem::remove_all(cfg.dir);
  }
}

void RegisterAll() {
  std::vector<uint32_t> threads;
  for (uint32_t t = 1; t <= BenchMaxThreads() * 2; t *= 2) threads.push_back(t);
  // workload 0 = Fig 9a (RMW, 8B); workload 1 = Fig 9b (upsert, 100B)
  for (int w = 0; w < 2; ++w) {
    const char* panel = w == 0 ? "fig9a_rmw8B" : "fig9b_upsert100B";
    for (uint32_t t : threads) {
      std::string suffix = "/threads:" + std::to_string(t);
      if (w == 0) {
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/FASTER" + suffix).c_str(),
            BM_Faster<CountStoreFunctions>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/TBB-like" + suffix).c_str(),
            BM_ShardMap<uint64_t>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/Masstree-like" + suffix).c_str(),
            BM_Ordered<uint64_t>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
      } else {
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/FASTER" + suffix).c_str(),
            BM_Faster<Blob100Funcs>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/TBB-like" + suffix).c_str(),
            BM_ShardMap<Blob100>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (std::string(panel) + "/Masstree-like" + suffix).c_str(),
            BM_Ordered<Blob100>)
            ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
      }
      benchmark::RegisterBenchmark(
          (std::string(panel) + "/RocksDB-like" + suffix).c_str(), BM_Lsm)
          ->Args({t, w})->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
