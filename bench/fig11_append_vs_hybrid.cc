// Reproduces Fig. 11: the append-only log allocator (Sec. 5 strawman,
// FASTER-AOL) vs. HybridLog (FASTER-HL) on YCSB 50:50 (reads : blind
// updates), uniform and Zipf, with increasing thread count.
//
// Expected shape: HybridLog scales and is several times faster (in-place
// updates, no tail contention for hits in the mutable region); the
// append-only variant is flat and slow — every update allocates at the
// tail, copies, and CASes the index, and Zipf's benefit is eaten by CAS
// failures on hot keys (the paper reports it capped near 20 M ops/s on
// 56 threads).

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_Variant(benchmark::State& state) {
  bool append_only = state.range(0) == 1;
  Distribution dist =
      state.range(1) == 0 ? Distribution::kUniform : Distribution::kZipfian;
  uint32_t threads = static_cast<uint32_t>(state.range(2));
  uint64_t keys = BenchKeys();
  auto spec = WorkloadSpec::Ycsb(0.5, 0.0, dist, keys);
  for (auto _ : state) {
    // Append-only: no mutable region and no in-place updates at all.
    auto cfg = append_only
                   ? FasterConfig<CountStoreFunctions>(keys, 256ull << 20,
                                                       /*mutable=*/0.0,
                                                       /*force_rcu=*/true)
                   : FasterConfig<CountStoreFunctions>(keys, keys * 64, 0.9);
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, threads, BenchSeconds());
    Report(state, r);
    auto stats = holder.store->GetStats();
    state.counters["appended_records"] =
        benchmark::Counter(static_cast<double>(stats.appended_records));
  }
}

void RegisterAll() {
  std::vector<uint32_t> threads;
  for (uint32_t t = 1; t <= BenchMaxThreads() * 2; t *= 2) threads.push_back(t);
  for (int ao = 0; ao < 2; ++ao) {
    for (int d = 0; d < 2; ++d) {
      for (uint32_t t : threads) {
        std::string name = std::string("fig11/") +
                           (ao == 1 ? "FASTER-AOL" : "FASTER-HL") + "/" +
                           (d == 0 ? "uniform" : "zipf") +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(name.c_str(), BM_Variant)
            ->Args({ao, d, static_cast<int64_t>(t)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
