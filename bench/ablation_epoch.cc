// Ablation: cost of epoch maintenance. Sweeps the refresh interval (the
// paper's Sec. 2.5 lifecycle refreshes every 256 operations) on YCSB 50:50
// uniform. Expected shape: very frequent refreshes (every few ops) pay a
// visible tax scanning the epoch table and drain list; beyond ~256 the
// cost is amortized to noise — the design point the paper picks. Extremely
// infrequent refreshes delay trigger actions (flush/eviction), which can
// stall page rollover on small buffers; the `allocation_stall` sweep
// demonstrates this with a log that must recycle frames constantly.

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_RefreshInterval(benchmark::State& state) {
  uint32_t interval = static_cast<uint32_t>(state.range(0));
  bool small_buffer = state.range(1) == 1;
  uint64_t keys = BenchKeys();
  auto spec = WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kUniform, keys);
  for (auto _ : state) {
    auto cfg = small_buffer
                   ? FasterConfig<CountStoreFunctions>(
                         keys, 2ull << Address::kOffsetBits, 0.5)
                   : FasterConfig<CountStoreFunctions>(keys, keys * 64, 0.9);
    cfg.refresh_interval = interval;
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    Report(state, RunWorkload(adapter, spec, 2, BenchSeconds()));
  }
}

void RegisterAll() {
  for (int small = 0; small < 2; ++small) {
    const char* variant = small == 1 ? "allocation_stall" : "in_memory";
    for (int64_t interval : {4, 16, 64, 256, 1024, 8192}) {
      std::string name = std::string("ablation_epoch/") + variant +
                         "/refresh_every:" + std::to_string(interval);
      benchmark::RegisterBenchmark(name.c_str(), BM_RefreshInterval)
          ->Args({interval, small})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
