// Reproduces Fig. 13: percentage of fuzzy-region operations with
// increasing thread count, 100% RMW uniform, IPU region factor fixed at
// 0.8. The paper finds it grows with threads (more laggard epoch views)
// but stays below 1% even at 56 threads.

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_FuzzyThreads(benchmark::State& state) {
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  uint64_t keys = BenchKeys();
  auto spec = WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kUniform, keys);
  for (auto _ : state) {
    uint64_t dataset_bytes =
        keys * FasterKv<CountStoreFunctions>::RecordT::size();
    auto cfg = FasterConfig<CountStoreFunctions>(
        keys, dataset_bytes + (8ull << 20), /*mutable=*/0.8);
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, threads, BenchSeconds());
    Report(state, r);
    auto stats = holder.store->GetStats();
    double fuzzy_pct =
        stats.rmws > 0 ? 100.0 * static_cast<double>(stats.fuzzy_rmws) /
                             static_cast<double>(stats.rmws)
                       : 0.0;
    state.counters["fuzzy_pct"] = benchmark::Counter(fuzzy_pct);
  }
}

void RegisterAll() {
  for (uint32_t t = 1; t <= BenchMaxThreads() * 2; t *= 2) {
    std::string name = "fig13/FASTER/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(name.c_str(), BM_FuzzyThreads)
        ->Args({static_cast<int64_t>(t)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
