// Reproduces Fig. 8 (a-d): YCSB-A throughput of FASTER vs. the in-memory
// hash map (Intel TBB stand-in), the in-memory range index (Masstree
// stand-in), and the LSM store (RocksDB stand-in), for the workload
// variants 0:100 RMW, 0:100, 50:50, 100:0 under uniform and Zipfian key
// distributions — on a single thread (8a/8b) and on all threads (8c/8d).
//
// Dataset fits in memory (the paper's Sec. 7.2 setting). 8-byte keys and
// values. Expected shape: FASTER >> TBB-like hash > Masstree-like range
// index >> LSM; Zipf helps FASTER (cache locality) and hurts the locking
// hash map at higher thread counts.

#include "common.h"

namespace faster {
namespace bench {
namespace {

struct Variant {
  const char* name;
  double reads;
  double rmws;
};
const Variant kVariants[] = {
    {"0:100RMW", 0.0, 1.0},
    {"0:100", 0.0, 0.0},
    {"50:50", 0.5, 0.0},
    {"100:0", 1.0, 0.0},
};
const Distribution kDists[] = {Distribution::kUniform,
                               Distribution::kZipfian};

WorkloadSpec SpecFor(int variant, int dist, uint64_t keys) {
  return WorkloadSpec::Ycsb(kVariants[variant].reads, kVariants[variant].rmws,
                            kDists[dist], keys);
}

void BM_Faster(benchmark::State& state) {
  uint64_t keys = BenchKeys();
  auto spec = SpecFor(state.range(0), state.range(1), keys);
  uint32_t threads = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    FasterStoreHolder<CountStoreFunctions> holder{
        FasterConfig<CountStoreFunctions>(keys, keys * 64)};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

void BM_ShardHashMap(benchmark::State& state) {
  uint64_t keys = BenchKeys();
  auto spec = SpecFor(state.range(0), state.range(1), keys);
  uint32_t threads = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    ShardHashMap<uint64_t, uint64_t> map{keys};
    for (uint64_t k = 0; k < keys; ++k) map.Put(k, k);
    ShardMapAdapter<uint64_t> adapter{map};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

void BM_OrderedStore(benchmark::State& state) {
  uint64_t keys = BenchKeys();
  auto spec = SpecFor(state.range(0), state.range(1), keys);
  uint32_t threads = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    OrderedStore<uint64_t, uint64_t> store;
    for (uint64_t k = 0; k < keys; ++k) store.Put(k, k);
    OrderedAdapter<uint64_t> adapter{store};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
  }
}

void BM_MiniLsm(benchmark::State& state) {
  uint64_t keys = BenchKeys() / 4;  // LSM load is slow; keep setup sane
  auto spec = SpecFor(state.range(0), state.range(1), keys);
  uint32_t threads = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    minilsm::LsmConfig cfg;
    cfg.dir = "/tmp/faster_bench_lsm_fig8";
    std::filesystem::remove_all(cfg.dir);
    cfg.value_size = 8;
    cfg.memtable_bytes = 16ull << 20;
    minilsm::MiniLsm db{cfg};
    for (uint64_t k = 0; k < keys; ++k) db.Put(k, &k);
    LsmAdapter adapter{db, 8};
    Report(state, RunWorkload(adapter, spec, threads, BenchSeconds()));
    std::filesystem::remove_all(cfg.dir);
  }
}

void RegisterAll() {
  uint32_t all_threads = BenchMaxThreads();
  for (int v = 0; v < 4; ++v) {
    for (int d = 0; d < 2; ++d) {
      for (uint32_t t : {1u, all_threads}) {
        std::string suffix = std::string("/") + kVariants[v].name + "/" +
                             DistributionName(kDists[d]) + "/threads:" +
                             std::to_string(t);
        benchmark::RegisterBenchmark(("fig8/FASTER" + suffix).c_str(),
                                     BM_Faster)
            ->Args({v, d, static_cast<int64_t>(t)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(("fig8/TBB-like" + suffix).c_str(),
                                     BM_ShardHashMap)
            ->Args({v, d, static_cast<int64_t>(t)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(("fig8/Masstree-like" + suffix).c_str(),
                                     BM_OrderedStore)
            ->Args({v, d, static_cast<int64_t>(t)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(("fig8/RocksDB-like" + suffix).c_str(),
                                     BM_MiniLsm)
            ->Args({v, d, static_cast<int64_t>(t)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
