// Reproduces the Sec. 7.2.2 text experiment: sensitivity of FASTER's
// throughput to the hash-index tag width (YCSB 50:50 uniform, all
// threads). The paper reports that shrinking the tag from 15 bits to 4
// bits costs < 5% and to 1 bit costs < 14% — i.e., FASTER can robustly
// give tag bits back to larger addresses.

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_TagBits(benchmark::State& state) {
  uint32_t tag_bits = static_cast<uint32_t>(state.range(0));
  uint64_t keys = BenchKeys();
  auto spec = WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kUniform, keys);
  for (auto _ : state) {
    auto cfg = FasterConfig<CountStoreFunctions>(keys, keys * 64);
    cfg.tag_bits = tag_bits;
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    Report(state,
           RunWorkload(adapter, spec, BenchMaxThreads(), BenchSeconds()));
    state.counters["index_entries_used"] = benchmark::Counter(
        static_cast<double>(holder.store->index().NumUsedEntries()));
  }
}

void RegisterAll() {
  for (int64_t bits : {15, 8, 4, 2, 1}) {
    std::string name = "tag_size/FASTER/tag_bits:" + std::to_string(bits);
    benchmark::RegisterBenchmark(name.c_str(), BM_TagBits)
        ->Args({bits})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
