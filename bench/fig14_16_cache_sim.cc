// Reproduces Figs. 14, 15, 16: cache miss ratio of FIFO, LRU-1, LRU-2,
// CLOCK, and HLOG (HybridLog's implicit second-chance-FIFO-like behaviour)
// over a constant-sized key buffer, for cache sizes 1/2, 1/4, 1/8, 1/16 of
// the key space, under uniform (Fig. 14), Zipfian theta=0.99 (Fig. 15),
// and shifting hot-set (Fig. 16) access patterns.
//
// Expected shape (Sec. 7.5): all policies are close under uniform; under
// Zipf and hot-set, HLOG misses slightly more than LRU-1/LRU-2/CLOCK
// (replication of hot keys reduces the effective cache size) but beats
// FIFO (the read-only region is a second chance) — all without
// maintaining any per-record statistics.

#include "cache_sim/simulator.h"
#include "common.h"

namespace faster {
namespace bench {
namespace {

const char* kPolicies[] = {"FIFO", "LRU_1", "LRU_2", "CLOCK", "HLOG"};
const Distribution kDists[] = {Distribution::kUniform, Distribution::kZipfian,
                               Distribution::kHotSet};
const char* kFigure[] = {"fig14", "fig15", "fig16"};

void BM_CacheSim(benchmark::State& state) {
  const char* policy = kPolicies[state.range(0)];
  Distribution dist = kDists[state.range(1)];
  uint64_t denom = static_cast<uint64_t>(state.range(2));
  uint64_t total_keys = std::min<uint64_t>(BenchKeys(), 1 << 17);
  uint64_t accesses = total_keys * 8;
  for (auto _ : state) {
    auto r = RunCacheSim(policy, dist, total_keys, 1.0 / double(denom),
                         accesses, /*warmup=*/accesses / 2, /*seed=*/42);
    state.counters["miss_ratio"] = benchmark::Counter(r.miss_ratio);
    state.counters["hit_ratio"] = benchmark::Counter(1.0 - r.miss_ratio);
    state.SetItemsProcessed(static_cast<int64_t>(r.accesses));
  }
}

void RegisterAll() {
  for (int d = 0; d < 3; ++d) {
    for (int64_t denom : {2, 4, 8, 16}) {
      for (int p = 0; p < 5; ++p) {
        std::string name = std::string(kFigure[d]) + "/" +
                           DistributionName(kDists[d]) + "/" + kPolicies[p] +
                           "/cache_1_over:" + std::to_string(denom);
        benchmark::RegisterBenchmark(name.c_str(), BM_CacheSim)
            ->Args({p, d, denom})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
