// Ablation for the read cache (Appendix D): a read-mostly workload over a
// larger-than-memory dataset with a skewed (Zipf / hot-set) access pattern,
// with and without the read cache enabled. Expected shape: with the cache,
// most reads of read-hot records are served from memory (high
// read_cache_hit ratio, fewer storage reads, higher throughput); without
// it, every read below the head pays a storage I/O. Uniform access shows
// little benefit (nothing is read-hot) — the caveat Appendix D notes.

#include "common.h"

namespace faster {
namespace bench {
namespace {

void BM_ReadCache(benchmark::State& state) {
  bool enable_cache = state.range(0) == 1;
  Distribution dist =
      state.range(1) == 0 ? Distribution::kZipfian : Distribution::kUniform;
  // Need a dataset several times the 8 MB (2-page) budget so reads
  // actually hit storage, whatever FASTER_BENCH_KEYS says.
  uint64_t keys = std::max<uint64_t>(BenchKeys(), uint64_t{1} << 20);
  // 90% reads over a dataset ~3-6x the memory budget.
  auto spec = WorkloadSpec::Ycsb(0.9, 0.0, dist, keys);
  for (auto _ : state) {
    auto cfg = FasterConfig<CountStoreFunctions>(
        keys, 2ull << Address::kOffsetBits, 0.5);
    cfg.enable_read_cache = enable_cache;
    cfg.read_cache.memory_size_bytes = 2ull << Address::kOffsetBits;
    cfg.read_cache.mutable_fraction = 0.5;
    FasterStoreHolder<CountStoreFunctions> holder{cfg};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, 2, BenchSeconds());
    Report(state, r);
    auto stats = holder.store->GetStats();
    double reads = static_cast<double>(stats.reads);
    state.counters["storage_reads_pct"] = benchmark::Counter(
        reads > 0 ? 100.0 * static_cast<double>(stats.pending_ios) / reads
                  : 0.0);
    state.counters["cache_hit_pct"] = benchmark::Counter(
        reads > 0 ? 100.0 * static_cast<double>(stats.read_cache_hits) / reads
                  : 0.0);
  }
}

void RegisterAll() {
  for (int d = 0; d < 2; ++d) {
    for (int c = 0; c < 2; ++c) {
      std::string name = std::string("appendixD/") +
                         (d == 0 ? "zipf" : "uniform") + "/" +
                         (c == 1 ? "with_cache" : "no_cache");
      benchmark::RegisterBenchmark(name.c_str(), BM_ReadCache)
          ->Args({c, d})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
