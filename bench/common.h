#ifndef FASTER_BENCH_COMMON_H_
#define FASTER_BENCH_COMMON_H_

#include <benchmark/benchmark.h>
#include <errno.h>  // program_invocation_short_name (GNU)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "baselines/minilsm/db.h"
#include "baselines/ordered_store.h"
#include "baselines/shard_hash_map.h"
#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "workload/ycsb.h"

namespace faster {
namespace bench {

/// Per-case measurement window. The paper runs 30 s per test; this
/// scaled-down harness defaults to a short window, overridable with
/// FASTER_BENCH_SECONDS. Malformed or non-positive values fall back to the
/// default with a warning rather than silently running a 0-second bench.
inline double BenchSeconds(double def = 0.6) {
  const char* env = std::getenv("FASTER_BENCH_SECONDS");
  if (env == nullptr) return def;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(v > 0)) {
    std::fprintf(stderr,
                 "bench: invalid FASTER_BENCH_SECONDS='%s'; using %g\n", env,
                 def);
    return def;
  }
  return v;
}

/// Dataset size. The paper uses 250 M keys; the scaled-down default is
/// overridable with FASTER_BENCH_KEYS.
inline uint64_t BenchKeys(uint64_t def = uint64_t{1} << 20) {
  const char* env = std::getenv("FASTER_BENCH_KEYS");
  if (env == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v == 0) {
    std::fprintf(stderr,
                 "bench: invalid FASTER_BENCH_KEYS='%s'; using %llu\n", env,
                 static_cast<unsigned long long>(def));
    return def;
  }
  return v;
}

/// Worker-thread counts for "all threads" style experiments (the paper's
/// machine has 56 hyperthreads; this container is single-core, so thread
/// sweeps measure contention behaviour rather than parallel speedup).
inline uint32_t BenchMaxThreads(uint32_t def = 4) {
  const char* env = std::getenv("FASTER_BENCH_THREADS");
  if (env == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v == 0 ||
      v > Thread::kMaxThreads) {
    std::fprintf(stderr,
                 "bench: invalid FASTER_BENCH_THREADS='%s' (want 1..%u); "
                 "using %u\n",
                 env, Thread::kMaxThreads, def);
    return def;
  }
  return static_cast<uint32_t>(v);
}

template <class V>
V MakeValue(uint64_t seed) {
  if constexpr (std::is_same_v<V, uint64_t>) {
    return seed;
  } else {
    V v{};
    std::memcpy(&v, &seed, sizeof(uint64_t));
    return v;
  }
}

// ---------------------------------------------------------------------------
// FASTER
// ---------------------------------------------------------------------------

template <class F>
struct FasterStoreHolder {
  explicit FasterStoreHolder(const typename FasterKv<F>::Config& cfg)
      : device(std::make_unique<MemoryDevice>(2)),
        store(std::make_unique<FasterKv<F>>(cfg, device.get())) {}

  /// Preloads keys [0, n) (the paper preloads the dataset before runs).
  void Load(uint64_t n) {
    store->StartSession();
    for (uint64_t k = 0; k < n; ++k) {
      store->Upsert(k, MakeValue<typename F::Value>(k));
    }
    store->StopSession();
  }

  std::unique_ptr<MemoryDevice> device;
  std::unique_ptr<FasterKv<F>> store;
};

template <class F>
typename FasterKv<F>::Config FasterConfig(uint64_t keys, uint64_t mem_bytes,
                                          double mutable_frac = 0.9,
                                          bool force_rcu = false) {
  typename FasterKv<F>::Config cfg;
  cfg.table_size = std::max<uint64_t>(keys / 2, 1024);  // paper: #keys/2
  cfg.log.memory_size_bytes = mem_bytes;
  cfg.log.mutable_fraction = mutable_frac;
  cfg.force_rcu = force_rcu;
  return cfg;
}

template <class F>
struct FasterAdapter {
  explicit FasterAdapter(FasterKv<F>& s) : store{s} {}
  FasterKv<F>& store;

  void Begin() { store.StartSession(); }
  void End() { store.StopSession(); }
  void DoRead(uint64_t key) {
    // Pending reads land in this thread-local sink at CompletePending time.
    thread_local typename F::Output out;
    benchmark::DoNotOptimize(store.Read(key, 1, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    store.Upsert(key, MakeValue<typename F::Value>(seq));
  }
  void DoRmw(uint64_t key) { store.Rmw(key, 1); }
  void DoBatch(const OpGenerator::Op* ops, size_t n) {
    // Outputs are thread_local so a read that goes pending still has a
    // live destination at CompletePending time (same as DoRead's out).
    thread_local std::vector<typename F::Output> outs(256);
    thread_local uint64_t seq = 0;
    using Store = FasterKv<F>;
    typename Store::BatchOp b[256];
    if (outs.size() < n) outs.resize(n);
    for (size_t i = 0; i < n; ++i) {
      switch (ops[i].kind) {
        case OpKind::kRead:
          b[i].kind = Store::BatchOp::Kind::kRead;
          b[i].key = ops[i].key;
          b[i].input = 1;
          b[i].output = &outs[i];
          break;
        case OpKind::kUpsert:
          b[i].kind = Store::BatchOp::Kind::kUpsert;
          b[i].key = ops[i].key;
          b[i].value = MakeValue<typename F::Value>(seq++);
          break;
        case OpKind::kRmw:
          b[i].kind = Store::BatchOp::Kind::kRmw;
          b[i].key = ops[i].key;
          b[i].input = 1;
          break;
      }
    }
    store.ExecuteBatch(b, n);
  }
  void Idle() { store.CompletePending(false); }
};

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

template <class V>
struct ShardMapAdapter {
  explicit ShardMapAdapter(ShardHashMap<uint64_t, V>& m) : map{m} {}
  ShardHashMap<uint64_t, V>& map;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    V out;
    benchmark::DoNotOptimize(map.Get(key, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    map.Put(key, MakeValue<V>(seq));
  }
  void DoRmw(uint64_t key) {
    map.Rmw(key, [](V& v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, &v, 8);
      ++c;
      std::memcpy(&v, &c, 8);
    });
  }
  void Idle() {}
};

template <class V>
struct OrderedAdapter {
  explicit OrderedAdapter(OrderedStore<uint64_t, V>& s) : store{s} {}
  OrderedStore<uint64_t, V>& store;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    V out;
    benchmark::DoNotOptimize(store.Get(key, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    store.Put(key, MakeValue<V>(seq));
  }
  void DoRmw(uint64_t key) {
    store.Rmw(key, [](V& v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, &v, 8);
      ++c;
      std::memcpy(&v, &c, 8);
    });
  }
  void Idle() {}
};

struct LsmAdapter {
  explicit LsmAdapter(minilsm::MiniLsm& d, uint32_t value_size)
      : db{d}, value(value_size, 0) {}
  minilsm::MiniLsm& db;
  std::vector<uint8_t> value;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    thread_local std::vector<uint8_t> out(256);
    benchmark::DoNotOptimize(db.Get(key, out.data()));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    std::memcpy(value.data(), &seq, 8);
    db.Put(key, value.data());
  }
  void DoRmw(uint64_t key) {
    db.Rmw(key, [](void* v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, v, 8);
      ++c;
      std::memcpy(v, &c, 8);
    });
  }
  void Idle() {}
};

/// Accumulates one machine-readable result row per benchmark case and
/// writes them as a JSON "sidecar" file when the binary exits, so
/// tools/summarize_bench.py can merge results without scraping console
/// logs. Destination: $FASTER_BENCH_JSON_DIR/<binary>.stats.json
/// (default: current directory). Schema: faster-bench-v1.
class BenchSidecar {
 public:
  static BenchSidecar& Instance() {
    static BenchSidecar s;
    return s;
  }

  void Add(const std::string& case_name,
           std::vector<std::pair<std::string, double>> counters) {
    std::lock_guard<std::mutex> lock{mutex_};
    cases_.emplace_back(case_name, std::move(counters));
  }

  ~BenchSidecar() { Write(); }

 private:
  BenchSidecar() = default;

  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void Write() {
    if (cases_.empty()) return;
    const char* dir = std::getenv("FASTER_BENCH_JSON_DIR");
    std::string bench = program_invocation_short_name;
    std::string path =
        std::string(dir != nullptr ? dir : ".") + "/" + bench + ".stats.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write sidecar %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"schema\": \"faster-bench-v1\", \"bench\": \"%s\",",
                 Escape(bench).c_str());
    std::fprintf(f, " \"cases\": [");
    for (size_t i = 0; i < cases_.size(); ++i) {
      std::fprintf(f, "%s\n  {\"name\": \"%s\", \"counters\": {",
                   i == 0 ? "" : ",", Escape(cases_[i].first).c_str());
      const auto& counters = cases_[i].second;
      for (size_t j = 0; j < counters.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %.17g", j == 0 ? "" : ", ",
                     Escape(counters[j].first).c_str(), counters[j].second);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
  }

  std::mutex mutex_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      cases_;
};

/// Publishes a RunResult on the benchmark state. Latency percentiles
/// (sampled 1-in-256, FASTER_STATS builds only; see RunResult) are exposed
/// as counters so they reach both the console table and the JSON sidecar.
inline void Report(benchmark::State& state, const RunResult& r) {
  state.counters["Mops"] =
      benchmark::Counter(r.mops, benchmark::Counter::kAvgThreads);
  state.counters["total_ops"] = benchmark::Counter(
      static_cast<double>(r.total_ops), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(static_cast<int64_t>(r.total_ops));
  if (r.latency_samples > 0) {
    state.counters["p50_us"] = benchmark::Counter(
        static_cast<double>(r.p50_ns) / 1e3, benchmark::Counter::kAvgThreads);
    state.counters["p99_us"] = benchmark::Counter(
        static_cast<double>(r.p99_ns) / 1e3, benchmark::Counter::kAvgThreads);
    state.counters["p999_us"] = benchmark::Counter(
        static_cast<double>(r.p999_ns) / 1e3, benchmark::Counter::kAvgThreads);
  }
}

/// Console reporter that also copies each finished run (name + counters +
/// items/sec) into the BenchSidecar, so every bench binary emits a JSON
/// sidecar without per-case plumbing.
class SidecarReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::vector<std::pair<std::string, double>> counters;
      counters.emplace_back("iterations",
                            static_cast<double>(run.iterations));
      counters.emplace_back("real_time_s", run.real_accumulated_time);
      for (const auto& kv : run.counters) {
        counters.emplace_back(kv.first, kv.second.value);
      }
      BenchSidecar::Instance().Add(run.benchmark_name(),
                                   std::move(counters));
    }
  }
};

/// Shared main body for all bench binaries: runs google-benchmark with the
/// sidecar-emitting reporter.
inline int RunBenchmarks(int argc, char** argv) {
  // CI runs benches with FASTER_FLIGHT_DIR set so a crash mid-bench (e.g.
  // an epoch-check abort under -DFASTER_EPOCH_CHECK) leaves a flight dump
  // next to the sidecar instead of just an exit code.
  if (std::getenv("FASTER_FLIGHT_DIR") != nullptr) {
    obs::FlightRecorder::Instance().Install();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  SidecarReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

using Blob100 = BlobStoreFunctions<100>::Blob;

}  // namespace bench
}  // namespace faster

#endif  // FASTER_BENCH_COMMON_H_
