#ifndef FASTER_BENCH_COMMON_H_
#define FASTER_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/minilsm/db.h"
#include "baselines/ordered_store.h"
#include "baselines/shard_hash_map.h"
#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "workload/ycsb.h"

namespace faster {
namespace bench {

/// Per-case measurement window. The paper runs 30 s per test; this
/// scaled-down harness defaults to a short window, overridable with
/// FASTER_BENCH_SECONDS.
inline double BenchSeconds(double def = 0.6) {
  const char* env = std::getenv("FASTER_BENCH_SECONDS");
  return env != nullptr ? std::atof(env) : def;
}

/// Dataset size. The paper uses 250 M keys; the scaled-down default is
/// overridable with FASTER_BENCH_KEYS.
inline uint64_t BenchKeys(uint64_t def = uint64_t{1} << 20) {
  const char* env = std::getenv("FASTER_BENCH_KEYS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : def;
}

/// Worker-thread counts for "all threads" style experiments (the paper's
/// machine has 56 hyperthreads; this container is single-core, so thread
/// sweeps measure contention behaviour rather than parallel speedup).
inline uint32_t BenchMaxThreads(uint32_t def = 4) {
  const char* env = std::getenv("FASTER_BENCH_THREADS");
  return env != nullptr
             ? static_cast<uint32_t>(std::strtoul(env, nullptr, 10))
             : def;
}

template <class V>
V MakeValue(uint64_t seed) {
  if constexpr (std::is_same_v<V, uint64_t>) {
    return seed;
  } else {
    V v{};
    std::memcpy(&v, &seed, sizeof(uint64_t));
    return v;
  }
}

// ---------------------------------------------------------------------------
// FASTER
// ---------------------------------------------------------------------------

template <class F>
struct FasterStoreHolder {
  explicit FasterStoreHolder(const typename FasterKv<F>::Config& cfg)
      : device(std::make_unique<MemoryDevice>(2)),
        store(std::make_unique<FasterKv<F>>(cfg, device.get())) {}

  /// Preloads keys [0, n) (the paper preloads the dataset before runs).
  void Load(uint64_t n) {
    store->StartSession();
    for (uint64_t k = 0; k < n; ++k) {
      store->Upsert(k, MakeValue<typename F::Value>(k));
    }
    store->StopSession();
  }

  std::unique_ptr<MemoryDevice> device;
  std::unique_ptr<FasterKv<F>> store;
};

template <class F>
typename FasterKv<F>::Config FasterConfig(uint64_t keys, uint64_t mem_bytes,
                                          double mutable_frac = 0.9,
                                          bool force_rcu = false) {
  typename FasterKv<F>::Config cfg;
  cfg.table_size = std::max<uint64_t>(keys / 2, 1024);  // paper: #keys/2
  cfg.log.memory_size_bytes = mem_bytes;
  cfg.log.mutable_fraction = mutable_frac;
  cfg.force_rcu = force_rcu;
  return cfg;
}

template <class F>
struct FasterAdapter {
  explicit FasterAdapter(FasterKv<F>& s) : store{s} {}
  FasterKv<F>& store;

  void Begin() { store.StartSession(); }
  void End() { store.StopSession(); }
  void DoRead(uint64_t key) {
    // Pending reads land in this thread-local sink at CompletePending time.
    thread_local typename F::Output out;
    benchmark::DoNotOptimize(store.Read(key, 1, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    store.Upsert(key, MakeValue<typename F::Value>(seq));
  }
  void DoRmw(uint64_t key) { store.Rmw(key, 1); }
  void Idle() { store.CompletePending(false); }
};

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

template <class V>
struct ShardMapAdapter {
  explicit ShardMapAdapter(ShardHashMap<uint64_t, V>& m) : map{m} {}
  ShardHashMap<uint64_t, V>& map;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    V out;
    benchmark::DoNotOptimize(map.Get(key, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    map.Put(key, MakeValue<V>(seq));
  }
  void DoRmw(uint64_t key) {
    map.Rmw(key, [](V& v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, &v, 8);
      ++c;
      std::memcpy(&v, &c, 8);
    });
  }
  void Idle() {}
};

template <class V>
struct OrderedAdapter {
  explicit OrderedAdapter(OrderedStore<uint64_t, V>& s) : store{s} {}
  OrderedStore<uint64_t, V>& store;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    V out;
    benchmark::DoNotOptimize(store.Get(key, &out));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    store.Put(key, MakeValue<V>(seq));
  }
  void DoRmw(uint64_t key) {
    store.Rmw(key, [](V& v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, &v, 8);
      ++c;
      std::memcpy(&v, &c, 8);
    });
  }
  void Idle() {}
};

struct LsmAdapter {
  explicit LsmAdapter(minilsm::MiniLsm& d, uint32_t value_size)
      : db{d}, value(value_size, 0) {}
  minilsm::MiniLsm& db;
  std::vector<uint8_t> value;

  void Begin() {}
  void End() {}
  void DoRead(uint64_t key) {
    thread_local std::vector<uint8_t> out(256);
    benchmark::DoNotOptimize(db.Get(key, out.data()));
  }
  void DoUpsert(uint64_t key, uint64_t seq) {
    std::memcpy(value.data(), &seq, 8);
    db.Put(key, value.data());
  }
  void DoRmw(uint64_t key) {
    db.Rmw(key, [](void* v, bool fresh) {
      uint64_t c = 0;
      if (!fresh) std::memcpy(&c, v, 8);
      ++c;
      std::memcpy(v, &c, 8);
    });
  }
  void Idle() {}
};

/// Publishes a RunResult on the benchmark state.
inline void Report(benchmark::State& state, const RunResult& r) {
  state.counters["Mops"] =
      benchmark::Counter(r.mops, benchmark::Counter::kAvgThreads);
  state.counters["total_ops"] = benchmark::Counter(
      static_cast<double>(r.total_ops), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(static_cast<int64_t>(r.total_ops));
}

using Blob100 = BlobStoreFunctions<100>::Blob;

}  // namespace bench
}  // namespace faster

#endif  // FASTER_BENCH_COMMON_H_
