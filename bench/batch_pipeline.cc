// Measures the software-pipelined batch API (ReadBatch / ExecuteBatch)
// against the single-op path by sweeping the batch size B over
// {1, 4, 8, 16, 32, 64}. B=1 uses the plain single-op loop; B>1 hashes
// all keys up front, prefetches hash buckets and records, and executes
// against warm cache lines (group prefetching a la Lomet & Wang's
// pipelined BwTree work, cited in Sec. 7 discussion).
//
// The headline case is read-heavy uniform in-memory (YCSB-C style): with
// a working set far larger than L2, every op is a dependent cache-miss
// chain (bucket -> record) and batching overlaps those misses via
// memory-level parallelism on a single core. A mixed 50:50 sweep shows
// the benefit persists with in-place updates in the mutable region.
//
// Reported counters: B (batch size) and Mops; summarize_bench.py groups
// on B and prints best-B vs B=1 speedup per case.

#include "common.h"

namespace faster {
namespace bench {
namespace {

// Large enough that bucket+record lookups miss cache (the point of the
// pipeline), small enough to stay in-memory on the default config.
uint64_t PipelineKeys() { return BenchKeys(uint64_t{1} << 21); }

void BM_BatchSweep(benchmark::State& state, double reads) {
  uint64_t keys = PipelineKeys();
  auto spec = WorkloadSpec::Ycsb(reads, 0.0, Distribution::kUniform, keys);
  uint32_t batch = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FasterStoreHolder<CountStoreFunctions> holder{
        FasterConfig<CountStoreFunctions>(keys, keys * 64)};
    holder.Load(keys);
    FasterAdapter<CountStoreFunctions> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, /*num_threads=*/1, BenchSeconds(),
                         /*seed=*/1, batch);
    Report(state, r);
    state.counters["B"] = static_cast<double>(batch);
  }
}

void BM_Read100(benchmark::State& state) { BM_BatchSweep(state, 1.0); }
void BM_Mixed5050(benchmark::State& state) { BM_BatchSweep(state, 0.5); }

void RegisterAll() {
  for (int64_t b : {1, 4, 8, 16, 32, 64}) {
    benchmark::RegisterBenchmark(
        ("fig_batch/read100/uniform/B:" + std::to_string(b)).c_str(),
        BM_Read100)
        ->Args({b})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("fig_batch/50:50/uniform/B:" + std::to_string(b)).c_str(),
        BM_Mixed5050)
        ->Args({b})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
