file(REMOVE_RECURSE
  "CMakeFiles/inmem_kv_test.dir/inmem_kv_test.cc.o"
  "CMakeFiles/inmem_kv_test.dir/inmem_kv_test.cc.o.d"
  "inmem_kv_test"
  "inmem_kv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmem_kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
