# Empty dependencies file for inmem_kv_test.
# This may be replaced when dependencies are built.
