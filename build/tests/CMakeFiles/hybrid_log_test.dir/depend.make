# Empty dependencies file for hybrid_log_test.
# This may be replaced when dependencies are built.
