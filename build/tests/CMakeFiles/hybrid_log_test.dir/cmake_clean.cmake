file(REMOVE_RECURSE
  "CMakeFiles/hybrid_log_test.dir/hybrid_log_test.cc.o"
  "CMakeFiles/hybrid_log_test.dir/hybrid_log_test.cc.o.d"
  "hybrid_log_test"
  "hybrid_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
