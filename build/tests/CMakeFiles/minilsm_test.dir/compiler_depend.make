# Empty compiler generated dependencies file for minilsm_test.
# This may be replaced when dependencies are built.
