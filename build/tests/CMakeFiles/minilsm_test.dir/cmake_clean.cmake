file(REMOVE_RECURSE
  "CMakeFiles/minilsm_test.dir/minilsm_test.cc.o"
  "CMakeFiles/minilsm_test.dir/minilsm_test.cc.o.d"
  "minilsm_test"
  "minilsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
