file(REMOVE_RECURSE
  "CMakeFiles/faster_regions_test.dir/faster_regions_test.cc.o"
  "CMakeFiles/faster_regions_test.dir/faster_regions_test.cc.o.d"
  "faster_regions_test"
  "faster_regions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_regions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
