# Empty compiler generated dependencies file for faster_regions_test.
# This may be replaced when dependencies are built.
