file(REMOVE_RECURSE
  "libfaster_workload.a"
)
