file(REMOVE_RECURSE
  "CMakeFiles/faster_workload.dir/workload/keygen.cc.o"
  "CMakeFiles/faster_workload.dir/workload/keygen.cc.o.d"
  "CMakeFiles/faster_workload.dir/workload/ycsb.cc.o"
  "CMakeFiles/faster_workload.dir/workload/ycsb.cc.o.d"
  "CMakeFiles/faster_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/faster_workload.dir/workload/zipf.cc.o.d"
  "libfaster_workload.a"
  "libfaster_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
