# Empty compiler generated dependencies file for faster_workload.
# This may be replaced when dependencies are built.
