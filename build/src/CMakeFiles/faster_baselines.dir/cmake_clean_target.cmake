file(REMOVE_RECURSE
  "libfaster_baselines.a"
)
