# Empty compiler generated dependencies file for faster_baselines.
# This may be replaced when dependencies are built.
