
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/minilsm/bloom.cc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/bloom.cc.o" "gcc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/bloom.cc.o.d"
  "/root/repo/src/baselines/minilsm/db.cc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/db.cc.o" "gcc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/db.cc.o.d"
  "/root/repo/src/baselines/minilsm/memtable.cc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/memtable.cc.o" "gcc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/memtable.cc.o.d"
  "/root/repo/src/baselines/minilsm/sstable.cc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/sstable.cc.o" "gcc" "src/CMakeFiles/faster_baselines.dir/baselines/minilsm/sstable.cc.o.d"
  "/root/repo/src/baselines/remote_store.cc" "src/CMakeFiles/faster_baselines.dir/baselines/remote_store.cc.o" "gcc" "src/CMakeFiles/faster_baselines.dir/baselines/remote_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faster_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
