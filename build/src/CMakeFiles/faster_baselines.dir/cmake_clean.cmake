file(REMOVE_RECURSE
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/bloom.cc.o"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/bloom.cc.o.d"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/db.cc.o"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/db.cc.o.d"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/memtable.cc.o"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/memtable.cc.o.d"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/sstable.cc.o"
  "CMakeFiles/faster_baselines.dir/baselines/minilsm/sstable.cc.o.d"
  "CMakeFiles/faster_baselines.dir/baselines/remote_store.cc.o"
  "CMakeFiles/faster_baselines.dir/baselines/remote_store.cc.o.d"
  "libfaster_baselines.a"
  "libfaster_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
