# Empty compiler generated dependencies file for faster_cache_sim.
# This may be replaced when dependencies are built.
