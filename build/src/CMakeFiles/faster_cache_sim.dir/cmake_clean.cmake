file(REMOVE_RECURSE
  "CMakeFiles/faster_cache_sim.dir/cache_sim/policies.cc.o"
  "CMakeFiles/faster_cache_sim.dir/cache_sim/policies.cc.o.d"
  "CMakeFiles/faster_cache_sim.dir/cache_sim/simulator.cc.o"
  "CMakeFiles/faster_cache_sim.dir/cache_sim/simulator.cc.o.d"
  "libfaster_cache_sim.a"
  "libfaster_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
