file(REMOVE_RECURSE
  "libfaster_cache_sim.a"
)
