# Empty dependencies file for faster_core.
# This may be replaced when dependencies are built.
