
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/epoch.cc" "src/CMakeFiles/faster_core.dir/core/epoch.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/core/epoch.cc.o.d"
  "/root/repo/src/core/hash_index.cc" "src/CMakeFiles/faster_core.dir/core/hash_index.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/core/hash_index.cc.o.d"
  "/root/repo/src/core/hybrid_log.cc" "src/CMakeFiles/faster_core.dir/core/hybrid_log.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/core/hybrid_log.cc.o.d"
  "/root/repo/src/core/thread.cc" "src/CMakeFiles/faster_core.dir/core/thread.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/core/thread.cc.o.d"
  "/root/repo/src/device/file_device.cc" "src/CMakeFiles/faster_core.dir/device/file_device.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/device/file_device.cc.o.d"
  "/root/repo/src/device/io_thread_pool.cc" "src/CMakeFiles/faster_core.dir/device/io_thread_pool.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/device/io_thread_pool.cc.o.d"
  "/root/repo/src/device/memory_device.cc" "src/CMakeFiles/faster_core.dir/device/memory_device.cc.o" "gcc" "src/CMakeFiles/faster_core.dir/device/memory_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
