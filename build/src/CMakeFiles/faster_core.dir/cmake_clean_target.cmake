file(REMOVE_RECURSE
  "libfaster_core.a"
)
