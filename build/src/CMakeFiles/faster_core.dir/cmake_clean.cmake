file(REMOVE_RECURSE
  "CMakeFiles/faster_core.dir/core/epoch.cc.o"
  "CMakeFiles/faster_core.dir/core/epoch.cc.o.d"
  "CMakeFiles/faster_core.dir/core/hash_index.cc.o"
  "CMakeFiles/faster_core.dir/core/hash_index.cc.o.d"
  "CMakeFiles/faster_core.dir/core/hybrid_log.cc.o"
  "CMakeFiles/faster_core.dir/core/hybrid_log.cc.o.d"
  "CMakeFiles/faster_core.dir/core/thread.cc.o"
  "CMakeFiles/faster_core.dir/core/thread.cc.o.d"
  "CMakeFiles/faster_core.dir/device/file_device.cc.o"
  "CMakeFiles/faster_core.dir/device/file_device.cc.o.d"
  "CMakeFiles/faster_core.dir/device/io_thread_pool.cc.o"
  "CMakeFiles/faster_core.dir/device/io_thread_pool.cc.o.d"
  "CMakeFiles/faster_core.dir/device/memory_device.cc.o"
  "CMakeFiles/faster_core.dir/device/memory_device.cc.o.d"
  "libfaster_core.a"
  "libfaster_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faster_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
