# Empty compiler generated dependencies file for fig12_ipu_region.
# This may be replaced when dependencies are built.
