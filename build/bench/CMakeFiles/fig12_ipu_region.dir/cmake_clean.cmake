file(REMOVE_RECURSE
  "CMakeFiles/fig12_ipu_region.dir/fig12_ipu_region.cc.o"
  "CMakeFiles/fig12_ipu_region.dir/fig12_ipu_region.cc.o.d"
  "fig12_ipu_region"
  "fig12_ipu_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ipu_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
