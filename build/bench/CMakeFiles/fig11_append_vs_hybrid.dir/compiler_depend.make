# Empty compiler generated dependencies file for fig11_append_vs_hybrid.
# This may be replaced when dependencies are built.
