file(REMOVE_RECURSE
  "CMakeFiles/fig11_append_vs_hybrid.dir/fig11_append_vs_hybrid.cc.o"
  "CMakeFiles/fig11_append_vs_hybrid.dir/fig11_append_vs_hybrid.cc.o.d"
  "fig11_append_vs_hybrid"
  "fig11_append_vs_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_append_vs_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
