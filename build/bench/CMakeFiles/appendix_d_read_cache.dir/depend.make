# Empty dependencies file for appendix_d_read_cache.
# This may be replaced when dependencies are built.
