file(REMOVE_RECURSE
  "CMakeFiles/appendix_d_read_cache.dir/appendix_d_read_cache.cc.o"
  "CMakeFiles/appendix_d_read_cache.dir/appendix_d_read_cache.cc.o.d"
  "appendix_d_read_cache"
  "appendix_d_read_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_d_read_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
