# Empty compiler generated dependencies file for fig14_16_cache_sim.
# This may be replaced when dependencies are built.
