file(REMOVE_RECURSE
  "CMakeFiles/fig14_16_cache_sim.dir/fig14_16_cache_sim.cc.o"
  "CMakeFiles/fig14_16_cache_sim.dir/fig14_16_cache_sim.cc.o.d"
  "fig14_16_cache_sim"
  "fig14_16_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_16_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
