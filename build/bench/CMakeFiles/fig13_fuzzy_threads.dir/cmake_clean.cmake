file(REMOVE_RECURSE
  "CMakeFiles/fig13_fuzzy_threads.dir/fig13_fuzzy_threads.cc.o"
  "CMakeFiles/fig13_fuzzy_threads.dir/fig13_fuzzy_threads.cc.o.d"
  "fig13_fuzzy_threads"
  "fig13_fuzzy_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fuzzy_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
