# Empty compiler generated dependencies file for fig13_fuzzy_threads.
# This may be replaced when dependencies are built.
