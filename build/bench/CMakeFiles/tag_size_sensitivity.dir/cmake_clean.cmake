file(REMOVE_RECURSE
  "CMakeFiles/tag_size_sensitivity.dir/tag_size_sensitivity.cc.o"
  "CMakeFiles/tag_size_sensitivity.dir/tag_size_sensitivity.cc.o.d"
  "tag_size_sensitivity"
  "tag_size_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_size_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
