# Empty dependencies file for tag_size_sensitivity.
# This may be replaced when dependencies are built.
