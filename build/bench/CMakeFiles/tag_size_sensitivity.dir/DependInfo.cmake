
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tag_size_sensitivity.cc" "bench/CMakeFiles/tag_size_sensitivity.dir/tag_size_sensitivity.cc.o" "gcc" "bench/CMakeFiles/tag_size_sensitivity.dir/tag_size_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faster_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faster_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faster_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faster_cache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
