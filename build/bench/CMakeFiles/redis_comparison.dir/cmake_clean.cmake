file(REMOVE_RECURSE
  "CMakeFiles/redis_comparison.dir/redis_comparison.cc.o"
  "CMakeFiles/redis_comparison.dir/redis_comparison.cc.o.d"
  "redis_comparison"
  "redis_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
