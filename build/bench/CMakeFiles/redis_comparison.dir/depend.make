# Empty dependencies file for redis_comparison.
# This may be replaced when dependencies are built.
