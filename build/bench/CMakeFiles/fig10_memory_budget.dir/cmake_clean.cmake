file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory_budget.dir/fig10_memory_budget.cc.o"
  "CMakeFiles/fig10_memory_budget.dir/fig10_memory_budget.cc.o.d"
  "fig10_memory_budget"
  "fig10_memory_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
