# Empty dependencies file for count_store.
# This may be replaced when dependencies are built.
