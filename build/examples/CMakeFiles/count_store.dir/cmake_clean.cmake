file(REMOVE_RECURSE
  "CMakeFiles/count_store.dir/count_store.cpp.o"
  "CMakeFiles/count_store.dir/count_store.cpp.o.d"
  "count_store"
  "count_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
